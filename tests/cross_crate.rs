//! Cross-crate integration tests: FaaSKeeper and the ZooKeeper baseline
//! running the same workloads through the shared coordination facade,
//! the cost model cross-checked against metered usage, and the
//! structural-integrity validator over live deployments.

use fk_cloud::trace::Ctx;
use fk_core::consistency::check_tree_integrity;
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::{CreateMode, UserStoreKind};
use fk_cost::{price_usage, AwsPricing, CostModel, StorageMode};
use fk_workloads::Coordination;
use fk_zk::ZkEnsemble;

/// The same coordination script must behave identically on both systems.
fn coordination_script<C: Coordination>(coord: &C) -> Vec<String> {
    let mut log = Vec::new();
    coord.create("/app", b"root", false).unwrap();
    coord.create("/app/leader", b"node-1", true).unwrap();
    coord.create("/app/workers", b"", false).unwrap();
    for i in 0..3 {
        coord
            .create(
                &format!("/app/workers/w{i}"),
                format!("host-{i}").as_bytes(),
                true,
            )
            .unwrap();
    }
    log.push(format!("children={:?}", coord.children("/app/workers")));
    coord.set("/app", b"root-v2").unwrap();
    log.push(format!(
        "root={:?}",
        String::from_utf8_lossy(&coord.read("/app").unwrap())
    ));
    coord.delete("/app/workers/w1");
    log.push(format!("after-delete={:?}", coord.children("/app/workers")));
    log.push(format!("leader-exists={}", coord.exists("/app/leader")));
    log
}

#[test]
fn faaskeeper_and_zookeeper_agree_on_semantics() {
    let fk = Deployment::start(DeploymentConfig::aws());
    let fk_client = fk.connect("script").unwrap();
    let fk_log = coordination_script(&fk_client);

    let ensemble = ZkEnsemble::start(3);
    let zk_client = ensemble.connect(0, Ctx::disabled()).unwrap();
    let zk_log = coordination_script(&zk_client);

    assert_eq!(fk_log, zk_log, "identical observable behaviour");
    fk.shutdown();
}

#[test]
fn tree_integrity_holds_after_mixed_workload() {
    let fk =
        Deployment::start(DeploymentConfig::aws().with_user_store(UserStoreKind::hybrid_default()));
    let client = fk.connect("integrity").unwrap();
    client.create("/t", b"", CreateMode::Persistent).unwrap();
    for i in 0..10 {
        client
            .create(
                &format!("/t/n{i}"),
                &vec![i as u8; (i * 997) % 6000],
                CreateMode::Persistent,
            )
            .unwrap();
    }
    for i in (0..10).step_by(2) {
        client.delete(&format!("/t/n{i}"), -1).unwrap();
    }
    for i in (1..10).step_by(2) {
        client
            .set_data(&format!("/t/n{i}"), b"updated", -1)
            .unwrap();
    }
    let ctx = Ctx::disabled();
    let violations = check_tree_integrity(&ctx, fk.system(), fk.user_store().as_ref());
    assert!(violations.is_empty(), "violations: {violations:#?}");
    fk.shutdown();
}

#[test]
fn metered_write_cost_matches_analytic_model() {
    // Drive N identical 1 kB writes through the real pipeline and compare
    // the priced usage against the Table 4 analytic model.
    let fk = Deployment::start(DeploymentConfig::aws());
    let client = fk.connect("cost").unwrap();
    client
        .create("/n", &[0u8; 1024], CreateMode::Persistent)
        .unwrap();
    let before = fk.meter().snapshot();
    const N: usize = 50;
    for _ in 0..N {
        client.set_data("/n", &[1u8; 1024], -1).unwrap();
    }
    let usage = fk.meter().snapshot().since(&before);
    let priced = price_usage(&usage, &AwsPricing::default());
    let measured_storage_per_write = (priced.queue + priced.kv + priced.object) / N as f64;

    let model = CostModel::paper_default();
    let modeled = model.cost_write(StorageMode::Standard, 1024) - model.f_functions();
    // Within 2x: the implementation adds a watch-registry read and the
    // model rounds units; the *scale* must agree.
    let ratio = measured_storage_per_write / modeled;
    assert!(
        (0.5..2.0).contains(&ratio),
        "measured {measured_storage_per_write} vs modeled {modeled} (ratio {ratio})"
    );
    fk.shutdown();
}

#[test]
fn read_cost_is_storage_only() {
    let fk = Deployment::start(DeploymentConfig::aws());
    let client = fk.connect("reads").unwrap();
    client
        .create("/r", &[0u8; 1024], CreateMode::Persistent)
        .unwrap();
    // The create's success notification arrives before the leader's
    // post-distribution bookkeeping (txq pops) finishes metering; wait
    // for the meter to go quiet before opening the measurement window.
    let mut last = fk.meter().snapshot();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(25));
        let now = fk.meter().snapshot();
        if now.fn_invocations == last.fn_invocations && now.kv_ops == last.kv_ops {
            break;
        }
        last = now;
    }
    let before = fk.meter().snapshot();
    for _ in 0..20 {
        client.get_data("/r", false).unwrap();
    }
    let usage = fk.meter().snapshot().since(&before);
    assert_eq!(usage.fn_invocations, 0, "reads never touch functions");
    assert_eq!(usage.queue_messages, 0, "reads never touch queues");
    assert_eq!(usage.obj_gets, 20, "one storage access per read");
    fk.shutdown();
}

#[test]
fn hbase_workload_runs_on_faaskeeper() {
    use fk_workloads::hbase_sim::{HBaseCluster, HBaseConfig};
    use fk_workloads::ycsb::YcsbWorkload;
    use rand::SeedableRng;

    let fk = Deployment::start(DeploymentConfig::aws());
    let sessions: Vec<_> = (0..4)
        .map(|i| fk.connect(format!("hb-{i}")).unwrap())
        .collect();
    let refs: Vec<&fk_core::client::FkClient> = sessions.iter().collect();
    let config = HBaseConfig {
        records: 5_000,
        ..HBaseConfig::default()
    };
    let mut cluster = HBaseCluster::bootstrap(config, refs).unwrap();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let stats = cluster
        .run_phase(YcsbWorkload::A, 5_000, 500.0, &mut rng)
        .unwrap();
    assert_eq!(stats.app_ops, 5_000);
    assert!(stats.coord_reads + stats.coord_writes < 100);
    drop(sessions);
    fk.shutdown();
}

#[test]
fn gcp_deployment_passes_the_same_script() {
    let fk = Deployment::start(DeploymentConfig::gcp());
    let client = fk.connect("gcp-script").unwrap();
    let log = coordination_script(&client);
    assert_eq!(log.len(), 4);
    assert!(log[0].contains("w0") && log[0].contains("w2"));
    fk.shutdown();
}
