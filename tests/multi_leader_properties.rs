//! Z2 under the multi-leader tier (ISSUE 3 tentpole): one session's
//! writes interleaved across several shard groups, drained under a
//! random leader schedule, must still commit in a per-session total
//! order with globally unique txids.
//!
//! The synchronous client never has two writes in flight, so these tests
//! drive the pipeline directly: all of a session's requests are pushed
//! through the follower *before* any leader runs, which is exactly the
//! many-in-flight shape the cross-shard sequencing rule (prev_txid
//! hold-back + epoch-prefixed txid allocation) exists for.

use fk_cloud::queue::group_of;
use fk_core::consistency::check_tree_integrity;
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::distributor::DistributorConfig;
use fk_core::messages::{ClientNotification, ClientRequest, Payload, WriteOp};
use fk_core::CreateMode;
use fk_testkit::geometry;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// A committed write observed on the notification channel, in arrival
/// (= distribution) order.
#[derive(Debug)]
struct Committed {
    session: String,
    request_id: u64,
    txid: u64,
}

/// Runs `sessions × (creates + rounds×set_data)` through the follower,
/// then drains the leader tier in a seeded random group order, one batch
/// at a time (tolerating hold-back deferrals). Returns the committed
/// writes in distribution order plus the number of distinct shard groups
/// the paths actually landed on.
fn run_random_schedule(
    groups: usize,
    sessions: usize,
    paths_per_session: usize,
    rounds: usize,
    schedule_seed: u64,
) -> (Vec<Committed>, usize, Deployment) {
    let deployment = Deployment::direct(
        DeploymentConfig::aws().with_distributor(DistributorConfig::new(2, 8).with_groups(groups)),
    );
    let follower = deployment.make_follower();
    let leaders: Vec<_> = (0..groups)
        .map(|_| deployment.make_leader_inline())
        .collect();
    let ctx = fk_cloud::trace::Ctx::disabled();

    let session_ids: Vec<String> = (0..sessions).map(|s| format!("sess-{s}")).collect();
    let mut endpoints = Vec::new();
    let mut next_request: HashMap<String, u64> = HashMap::new();
    for id in &session_ids {
        deployment.system().register_session(&ctx, id, 0).unwrap();
        endpoints.push(deployment.bus().register(id).0);
        next_request.insert(id.clone(), 1);
    }
    let submit = |next_request: &mut HashMap<String, u64>, session: &str, op: WriteOp| {
        let request_id = next_request[session];
        next_request.insert(session.to_owned(), request_id + 1);
        let request = ClientRequest {
            session_id: session.to_owned(),
            request_id,
            op,
        };
        deployment
            .write_queue()
            .send(&ctx, session, request.encode())
            .unwrap();
    };
    let drain_follower = || {
        while let Some(batch) = deployment
            .write_queue()
            .receive(10, Duration::from_secs(30))
        {
            follower.process_messages(&ctx, &batch.messages).unwrap();
            deployment.write_queue().ack(batch.receipt);
        }
    };
    let drain_leaders_fully = |leaders: &[fk_core::leader::Leader]| {
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (g, leader) in leaders.iter().enumerate() {
                match leader.drain_queue(&ctx, deployment.leader_queues().queue(g)) {
                    Ok(0) => {}
                    _ => progressed = true,
                }
            }
        }
    };

    // Setup: the shared parent, fully distributed before the measured
    // interleaving starts.
    submit(
        &mut next_request,
        &session_ids[0],
        WriteOp::Create {
            path: "/p".into(),
            payload: Payload::inline(b""),
            mode: CreateMode::Persistent,
        },
    );
    drain_follower();
    drain_leaders_fully(&leaders);

    // Each session creates its paths, then writes them round-robin —
    // all pushed through the follower before any leader runs, so every
    // session has many transactions in flight across the tier at once.
    // Path names are salted so each session's set provably spans at
    // least two shard groups (the scenario under test).
    let mut groups_hit = HashSet::new();
    let mut session_paths: Vec<Vec<String>> = Vec::new();
    for s in 0..sessions {
        let first = format!("/p/s{s}x0");
        let first_group = group_of(&first, groups);
        let mut paths = vec![first];
        for p in 1..paths_per_session {
            let mut path = format!("/p/s{s}x{p}");
            if p == 1 {
                // Salt until this path lands off the first path's group.
                for salt in 0..256 {
                    path = format!("/p/s{s}x{p}v{salt}");
                    if group_of(&path, groups) != first_group {
                        break;
                    }
                }
            }
            paths.push(path);
        }
        for path in &paths {
            groups_hit.insert(group_of(path, groups));
        }
        session_paths.push(paths);
    }
    for (id, paths) in session_ids.iter().zip(&session_paths) {
        for path in paths {
            submit(
                &mut next_request,
                id,
                WriteOp::Create {
                    path: path.clone(),
                    payload: Payload::inline(b"v0"),
                    mode: CreateMode::Persistent,
                },
            );
        }
    }
    for round in 0..rounds {
        for (s, id) in session_ids.iter().enumerate() {
            let path = session_paths[s][round % paths_per_session].clone();
            submit(
                &mut next_request,
                id,
                WriteOp::SetData {
                    path,
                    payload: Payload::inline(format!("r{round}").as_bytes()),
                    expected_version: -1,
                },
            );
        }
    }
    drain_follower();

    // Random leader schedule: one batch from a random group at a time.
    // Hold-back deferrals nack without burning attempts, so any schedule
    // converges; bound it anyway.
    let mut rng = SmallRng::seed_from_u64(schedule_seed);
    let mut spins = 0;
    while deployment.leader_queues().pending() > 0 {
        let g = rng.gen_range(0..groups);
        let _ = leaders[g].drain_queue(&ctx, deployment.leader_queues().queue(g));
        spins += 1;
        assert!(spins < 20_000, "leader tier failed to converge");
    }

    let mut committed = Vec::new();
    for (id, endpoint) in session_ids.iter().zip(&endpoints) {
        while let Ok(notification) = endpoint.try_recv() {
            if let ClientNotification::WriteResult {
                request_id,
                result,
                txid,
            } = notification
            {
                assert!(result.is_ok(), "write failed: {result:?}");
                committed.push(Committed {
                    session: id.clone(),
                    request_id,
                    txid,
                });
            }
        }
    }
    (committed, groups_hit.len(), deployment)
}

/// Per-session: request ids in submission order must map to strictly
/// increasing txids (Z2); globally: every txid unique (Z3 part 1).
fn assert_z2_z3(committed: &[Committed], expected: usize) {
    assert_eq!(committed.len(), expected, "every write answered");
    let mut per_session: HashMap<&str, Vec<(u64, u64)>> = HashMap::new();
    for c in committed {
        per_session
            .entry(c.session.as_str())
            .or_default()
            .push((c.request_id, c.txid));
    }
    for (session, mut writes) in per_session {
        writes.sort_by_key(|(rid, _)| *rid);
        for pair in writes.windows(2) {
            assert!(
                pair[1].1 > pair[0].1,
                "session {session}: request {} (txid {}) not after request {} (txid {})",
                pair[1].0,
                pair[1].1,
                pair[0].0,
                pair[0].1,
            );
        }
    }
    let distinct: HashSet<u64> = committed.iter().map(|c| c.txid).collect();
    assert_eq!(distinct.len(), committed.len(), "txids globally unique");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case spins a full deployment
        .. ProptestConfig::default()
    })]

    /// One session, writes spread over several paths (and so over
    /// several shard groups), random drain schedule: per-session total
    /// order and global txid uniqueness must hold at every shard-group
    /// count.
    #[test]
    fn z2_one_session_interleaved_across_groups(
        groups in geometry::multi_leader_groups(),
        rounds in 1usize..8,
        schedule_seed in geometry::schedule_seed(),
    ) {
        let paths = 6;
        let (committed, hit, deployment) =
            run_random_schedule(groups, 1, paths, rounds, schedule_seed);
        prop_assert!(hit >= 2, "paths must span at least two shard groups");
        // setup create of /p + paths creates + rounds set_data.
        assert_z2_z3(&committed, 1 + paths + rounds);
        let ctx = fk_cloud::trace::Ctx::disabled();
        let violations =
            check_tree_integrity(&ctx, deployment.system(), deployment.user_store().as_ref());
        prop_assert!(violations.is_empty(), "{violations:#?}");
    }

    /// Several sessions at once: the same guarantees, plus cross-session
    /// txid uniqueness from independent per-group allocators.
    #[test]
    fn z2_many_sessions_interleaved_across_groups(
        groups in 2usize..6,
        sessions in 2usize..4,
        rounds in 1usize..5,
        schedule_seed in geometry::schedule_seed(),
    ) {
        let paths = 3;
        let (committed, hit, deployment) =
            run_random_schedule(groups, sessions, paths, rounds, schedule_seed);
        prop_assert!(hit >= 2, "paths must span at least two shard groups");
        assert_z2_z3(&committed, 1 + sessions * (paths + rounds));
        let ctx = fk_cloud::trace::Ctx::disabled();
        let violations =
            check_tree_integrity(&ctx, deployment.system(), deployment.user_store().as_ref());
        prop_assert!(violations.is_empty(), "{violations:#?}");
    }
}
