//! `multi` atomicity property suite.
//!
//! A multi commits as one unit under one txid, or not at all:
//!
//! * **random geometry property** — random op mixes over a small tree,
//!   at random shard/group geometry, compared against a reference model
//!   that predicts success (all ops applied, one shared txid) or the
//!   exact failing index (nothing applied);
//! * **crash mid-multi** — fault injection skips the follower's commit
//!   (the state a crash between push ➂ and commit ➃ leaves behind); the
//!   leader's `TryCommit` must land the *whole* multi atomically;
//! * **cancelled mid-multi** — the same crash state with the locks
//!   stolen before the leader runs: `TryCommit` fails its guard, the
//!   multi is abandoned, and **no** sub-op is visible anywhere (system
//!   store or any user-store replica).

use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::distributor::DistributorConfig;
use fk_core::messages::{ClientNotification, ClientRequest, MultiOp, Payload, WriteOp};
use fk_core::ops::{multi_error_results, Op, OpResult};
use fk_core::{CreateMode, FkError};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::time::Duration;

// ----------------------------------------------------------------------
// Random-geometry property with a reference model
// ----------------------------------------------------------------------

/// Generated multi ops over a fixed pool of paths under `/m`.
#[derive(Debug, Clone)]
enum GenOp {
    Create(usize),
    /// `(path, correct_version)` — wrong versions use `7777`.
    Set(usize, bool),
    Delete(usize, bool),
    Check(usize, bool),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    let slot = 0usize..4;
    prop_oneof![
        slot.clone().prop_map(GenOp::Create),
        (slot.clone(), 0u8..2).prop_map(|(s, ok)| GenOp::Set(s, ok == 1)),
        (slot.clone(), 0u8..2).prop_map(|(s, ok)| GenOp::Delete(s, ok == 1)),
        (slot, 0u8..2).prop_map(|(s, ok)| GenOp::Check(s, ok == 1)),
    ]
}

/// Reference model: which ops succeed, and the first failing index.
/// Mirrors the follower exactly: a pre-lock pass rejects duplicate
/// mutating paths first (whatever later validation would say), then the
/// ops validate in order against an overlay where each op observes its
/// predecessors' effects. "ok" ops carry expected version 0 (the version
/// every node in this workload starts at), so an op whose target was
/// already bumped by an earlier sub-op correctly fails.
fn model_outcome(existing: &BTreeMap<usize, i32>, ops: &[GenOp]) -> Result<(), usize> {
    // Pre-pass: duplicate mutating paths abort before any validation.
    let mut mutated: Vec<usize> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let slot = match op {
            GenOp::Create(s) | GenOp::Set(s, _) | GenOp::Delete(s, _) | GenOp::Check(s, _) => *s,
        };
        if !matches!(op, GenOp::Check(..)) {
            if mutated.contains(&slot) {
                return Err(i);
            }
            mutated.push(slot);
        }
    }
    let expected = |ok: bool| if ok { 0i32 } else { 7777 };
    let mut state: BTreeMap<usize, i32> = existing.clone();
    for (i, op) in ops.iter().enumerate() {
        match op {
            GenOp::Create(s) => {
                if state.contains_key(s) {
                    return Err(i); // NodeExists
                }
                state.insert(*s, 0);
            }
            GenOp::Set(s, ok) => match state.get_mut(s) {
                Some(v) if *v == expected(*ok) => *v += 1,
                Some(_) => return Err(i), // BadVersion
                None => return Err(i),    // NoNode
            },
            GenOp::Delete(s, ok) => match state.get(s) {
                Some(v) if *v == expected(*ok) => {
                    state.remove(s);
                }
                Some(_) => return Err(i),
                None => return Err(i),
            },
            GenOp::Check(s, ok) => match state.get(s) {
                Some(v) if *v == expected(*ok) => {}
                Some(_) => return Err(i),
                None => return Err(i),
            },
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn multi_is_all_or_nothing_at_random_geometry(
        preexisting_raw in proptest::collection::vec(0usize..4, 0..4),
        ops in proptest::collection::vec(gen_op(), 1..6),
        groups in prop_oneof![Just(1usize), Just(2), Just(3)],
    ) {
        let deployment = Deployment::start(
            DeploymentConfig::aws()
                .with_distributor(DistributorConfig::new(4, 16).with_groups(groups)),
        );
        let preexisting: std::collections::BTreeSet<usize> =
            preexisting_raw.into_iter().collect();
        let client = deployment.connect("multi-prop").unwrap();
        client.create("/m", b"", CreateMode::Persistent).unwrap();
        let mut existing: BTreeMap<usize, i32> = BTreeMap::new();
        for slot in &preexisting {
            client
                .create(&format!("/m/n{slot}"), b"seed", CreateMode::Persistent)
                .unwrap();
            existing.insert(*slot, 0);
        }

        let path_of = |slot: usize| format!("/m/n{slot}");
        let version = |ok: bool| if ok { 0 } else { 7777 };
        let wire_ops: Vec<Op> = ops
            .iter()
            .map(|op| match op {
                GenOp::Create(s) => Op::create(path_of(*s), b"new", CreateMode::Persistent),
                GenOp::Set(s, ok) => Op::set_data(path_of(*s), b"set", version(*ok)),
                GenOp::Delete(s, ok) => Op::delete(path_of(*s), version(*ok)),
                GenOp::Check(s, ok) => Op::check(path_of(*s), version(*ok)),
            })
            .collect();

        let before: BTreeMap<usize, Option<i32>> = (0..4)
            .map(|slot| {
                let stat = client.exists(&path_of(slot), false).unwrap();
                (slot, stat.map(|s| s.version))
            })
            .collect();
        let result = client.multi(wire_ops.clone());
        match model_outcome(&existing, &ops) {
            Ok(()) => {
                let results = result.expect("model says the multi commits");
                prop_assert_eq!(results.len(), ops.len());
                // One txid stamps every mutating outcome (the visible
                // all-or-nothing contract).
                let txids: Vec<u64> = results
                    .iter()
                    .filter_map(|r| match r {
                        OpResult::Create { stat, .. } | OpResult::SetData { stat } => {
                            Some(stat.modified_txid)
                        }
                        _ => None,
                    })
                    .collect();
                prop_assert!(txids.windows(2).all(|w| w[0] == w[1]),
                    "sub-ops carry one txid: {:?}", txids);
                // Every op's final effect is visible.
                let mut state: BTreeMap<usize, i32> = existing.clone();
                for op in &ops {
                    match op {
                        GenOp::Create(s) => { state.insert(*s, 0); }
                        GenOp::Set(s, _) => { *state.get_mut(s).unwrap() += 1; }
                        GenOp::Delete(s, _) => { state.remove(s); }
                        GenOp::Check(..) => {}
                    }
                }
                for slot in 0..4 {
                    let stat = client.exists(&path_of(slot), false).unwrap();
                    prop_assert_eq!(
                        stat.map(|s| s.version),
                        state.get(&slot).copied(),
                        "slot {} diverged from the model", slot
                    );
                }
            }
            Err(expected_index) => {
                let err = result.expect_err("model says the multi aborts");
                let FkError::MultiFailed { index, cause } = &err else {
                    panic!("expected MultiFailed, got {err:?}");
                };
                prop_assert_eq!(*index as usize, expected_index,
                    "failing index (cause {:?})", cause);
                // ZooKeeper-shaped per-op expansion.
                let expanded = multi_error_results(ops.len(), &err);
                prop_assert!(matches!(expanded[expected_index], OpResult::Error(_)));
                prop_assert!(expanded
                    .iter()
                    .enumerate()
                    .all(|(i, r)| i == expected_index || *r == OpResult::RolledBack));
                // Nothing changed, anywhere.
                for slot in 0..4 {
                    let stat = client.exists(&path_of(slot), false).unwrap();
                    prop_assert_eq!(
                        &stat.map(|s| s.version),
                        before.get(&slot).unwrap(),
                        "aborted multi leaked state into slot {}", slot
                    );
                }
            }
        }
        let _ = client.close();
        deployment.shutdown();
    }
}

// ----------------------------------------------------------------------
// Crash / cancel mid-multi (direct drive, fault injection)
// ----------------------------------------------------------------------

/// Builds a deployment + follower + leaders and seeds `/m` and `/m/b`.
fn crash_rig(groups: usize) -> (Deployment, fk_core::follower::Follower) {
    let deployment = Deployment::direct(
        DeploymentConfig::aws().with_distributor(DistributorConfig::new(2, 8).with_groups(groups)),
    );
    let follower = deployment.make_follower();
    let ctx = fk_cloud::trace::Ctx::disabled();
    deployment.system().register_session(&ctx, "s", 0).unwrap();
    for (rid, path) in [(1u64, "/m"), (2, "/m/b")] {
        let request = ClientRequest {
            session_id: "s".into(),
            request_id: rid,
            op: WriteOp::Create {
                path: path.into(),
                payload: Payload::inline(b"seed"),
                mode: CreateMode::Persistent,
            },
        };
        deployment
            .write_queue()
            .send(&ctx, "s", request.encode())
            .unwrap();
    }
    while let Some(batch) = deployment.write_queue().receive(10, Duration::from_secs(5)) {
        follower.process_messages(&ctx, &batch.messages).unwrap();
        deployment.write_queue().ack(batch.receipt);
    }
    let leaders: Vec<_> = (0..groups)
        .map(|_| deployment.make_leader_inline())
        .collect();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (g, leader) in leaders.iter().enumerate() {
            while leader
                .drain_queue(&ctx, deployment.leader_queues().queue(g))
                .unwrap()
                > 0
            {
                progressed = true;
            }
        }
    }
    (deployment, follower)
}

/// The multi under test: create `/m/a` + set `/m/b` + check `/m`.
fn crash_multi() -> ClientRequest {
    ClientRequest {
        session_id: "s".into(),
        request_id: 9,
        op: WriteOp::Multi {
            ops: vec![
                MultiOp::Create {
                    path: "/m/a".into(),
                    payload: Payload::inline(b"atomic"),
                    mode: CreateMode::Persistent,
                },
                MultiOp::SetData {
                    path: "/m/b".into(),
                    payload: Payload::inline(b"updated"),
                    expected_version: 0,
                },
                MultiOp::Check {
                    path: "/m".into(),
                    expected_version: -1,
                },
            ],
        },
    }
}

/// Drives the crash state: the follower pushes the multi but its commit
/// is skipped (fault injection), exactly a crash between ➂ and ➃.
fn push_without_commit(deployment: &Deployment, follower: &fk_core::follower::Follower) {
    let ctx = fk_cloud::trace::Ctx::disabled();
    deployment
        .write_queue()
        .send(&ctx, "s", crash_multi().encode())
        .unwrap();
    follower.config().skip_commits.store(1, Ordering::SeqCst);
    let batch = deployment
        .write_queue()
        .receive(10, Duration::from_secs(5))
        .unwrap();
    follower.process_messages(&ctx, &batch.messages).unwrap();
    deployment.write_queue().ack(batch.receipt);
    // The commit really was skipped: no node item carries the multi yet.
    let sys = deployment.system();
    assert!(
        !fk_core::system_store::SystemStore::node_exists(sys.get_node(&ctx, "/m/a").as_ref()),
        "commit skipped: /m/a not in system storage"
    );
}

fn drain_leaders(deployment: &Deployment, groups: usize) {
    let ctx = fk_cloud::trace::Ctx::disabled();
    let leaders: Vec<_> = (0..groups)
        .map(|_| deployment.make_leader_inline())
        .collect();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (g, leader) in leaders.iter().enumerate() {
            let queue = deployment.leader_queues().queue(g);
            let before = queue.pending();
            let _ = leader.drain_queue(&ctx, queue);
            if queue.pending() < before {
                progressed = true;
            }
        }
    }
}

#[test]
fn follower_crash_mid_multi_is_repaired_atomically() {
    for groups in [1usize, 2] {
        let (deployment, follower) = crash_rig(groups);
        let (notifications, _alive) = deployment.bus().register("s");
        push_without_commit(&deployment, &follower);

        // The leader finds the commit missing and TryCommits the whole
        // multi on the crashed follower's behalf.
        drain_leaders(&deployment, groups);
        let ctx = fk_cloud::trace::Ctx::disabled();
        let store = deployment.user_store();
        let a = store.read_node(&ctx, "/m/a").unwrap().expect("created");
        assert_eq!(a.data.as_ref(), b"atomic");
        let b = store.read_node(&ctx, "/m/b").unwrap().expect("updated");
        assert_eq!(b.data.as_ref(), b"updated");
        assert_eq!(a.modified_txid, b.modified_txid, "one txid, one unit");
        // The client was notified success with per-op results.
        let mut saw_success = false;
        while let Ok(notification) = notifications.try_recv() {
            if let ClientNotification::WriteResult {
                request_id: 9,
                result: Ok(data),
                ..
            } = notification
            {
                assert_eq!(data.op_results.len(), 3);
                saw_success = true;
            }
        }
        assert!(saw_success, "groups={groups}: client notified");
        deployment.shutdown();
    }
}

#[test]
fn cancelled_multi_leaves_no_partial_state() {
    for groups in [1usize, 2] {
        let (deployment, follower) = crash_rig(groups);
        let (notifications, _alive) = deployment.bus().register("s");
        push_without_commit(&deployment, &follower);

        // Steal every lock the multi holds before the leader runs: the
        // TryCommit's guard must fail and the multi must abandon.
        let ctx = fk_cloud::trace::Ctx::disabled();
        let far_future = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_millis() as i64
            + 10_000_000;
        for path in ["/m/a", "/m/b", "/m"] {
            deployment
                .system()
                .locks()
                .acquire(&ctx, &fk_core::system_store::keys::node(path), far_future)
                .expect("steal expired lock");
        }
        drain_leaders(&deployment, groups);

        // Z3 visibility: no replica shows any sub-op's effect.
        for store in deployment.user_stores() {
            assert!(
                store.read_node(&ctx, "/m/a").unwrap().is_none(),
                "groups={groups}: aborted create leaked into a replica"
            );
            let b = store
                .read_node(&ctx, "/m/b")
                .unwrap()
                .expect("pre-existing");
            assert_eq!(b.data.as_ref(), b"seed", "aborted set leaked");
            assert_eq!(b.version, 0);
        }
        // System storage: the create never materialized.
        let sys = deployment.system();
        assert!(
            !fk_core::system_store::SystemStore::node_exists(sys.get_node(&ctx, "/m/a").as_ref()),
            "groups={groups}: aborted create reached system storage"
        );
        // The client was told the transaction failed.
        let mut saw_error = false;
        while let Ok(notification) = notifications.try_recv() {
            if let ClientNotification::WriteResult {
                request_id: 9,
                result: Err(_),
                ..
            } = notification
            {
                saw_error = true;
            }
        }
        assert!(saw_error, "groups={groups}: client notified of the abort");
        deployment.shutdown();
    }
}

/// A multi's watch fan-out: one NodeChildrenChanged per watched parent,
/// stamped with the multi's txid.
#[test]
fn multi_fires_watches_with_the_shared_txid() {
    let deployment = Deployment::start(DeploymentConfig::aws());
    let writer = deployment.connect("multi-writer").unwrap();
    writer.create("/w", b"", CreateMode::Persistent).unwrap();
    let watcher = deployment.connect("multi-watcher").unwrap();
    watcher.get_children("/w", true).unwrap();

    let results = writer
        .multi(vec![
            Op::create("/w/a", b"1", CreateMode::Persistent),
            Op::create("/w/b", b"2", CreateMode::Persistent),
        ])
        .unwrap();
    let txid = match &results[0] {
        OpResult::Create { stat, .. } => stat.modified_txid,
        other => panic!("unexpected {other:?}"),
    };
    let event = watcher
        .watch_events()
        .recv_timeout(Duration::from_secs(5))
        .expect("children watch fires");
    assert_eq!(event.path, "/w");
    assert_eq!(event.txid, txid, "event stamped with the multi's txid");

    let _ = writer.close();
    let _ = watcher.close();
    deployment.shutdown();
}
