//! Z1 pipelined-FIFO property suite.
//!
//! FaaSKeeper's Z1 guarantee is defined over a *pipeline* of in-flight
//! requests per session. The handle-based client makes that pipeline
//! real, so these properties pin the observable contract:
//!
//! * **completion order = submission order**, per session, for writes —
//!   at every pipeline depth, across every shard-group geometry, no
//!   matter how the multi-leader tier interleaves result delivery;
//! * **txid order = submission order**, per session (Z2's client-visible
//!   face);
//! * the pending-op table **re-orders early arrivals** rather than
//!   completing out of order (exercised deterministically by injecting
//!   out-of-order results straight into the notification bus).

use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::distributor::DistributorConfig;
use fk_core::messages::{ClientNotification, WriteResultData};
use fk_core::{CreateMode, Stat};
use fk_testkit::geometry;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One session's pipelined workload: `writes` set_datas to its own node
/// (zipf-ish mix over two paths), all in flight at once.
#[derive(Debug, Clone)]
struct SessionPlan {
    writes: usize,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// N in-flight submits per session, random shard-group counts:
    /// completions arrive in submission order with strictly increasing
    /// txids, per session.
    #[test]
    fn pipelined_writes_complete_in_submission_order(
        plans in proptest::collection::vec(
            (3usize..8).prop_map(|writes| SessionPlan { writes }),
            1..4,
        ),
        groups in geometry::pow2_groups(),
        shards in geometry::pow2_shards(),
    ) {
        let deployment = Deployment::start(
            DeploymentConfig::aws().with_distributor(
                DistributorConfig::new(shards, 16)
                    .with_groups(groups)
                    .with_adaptive_batch(2),
            ),
        );
        let completions: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut clients = Vec::new();
        for (s, plan) in plans.iter().enumerate() {
            let client = deployment.connect(format!("pipe-{s}")).unwrap();
            // The node every write of this session targets.
            client
                .create(&format!("/pipe{s}"), b"seed", CreateMode::Persistent)
                .unwrap();
            let mut handles = Vec::new();
            // The pipeline: every write is in flight before any completes.
            for op in 0..plan.writes {
                // Alternate between the session's two paths so batches mix
                // conflicting (same-path) and independent requests — the
                // wave machinery must preserve order through both.
                let path = if op % 3 == 2 {
                    client
                        .create(&format!("/pipe{s}-alt{op}"), b"x", CreateMode::Persistent)
                        .map(|_| format!("/pipe{s}-alt{op}"))
                        .unwrap_or_else(|_| format!("/pipe{s}"));
                    format!("/pipe{s}-alt{op}")
                } else {
                    format!("/pipe{s}")
                };
                let handle = client
                    .submit_set_data(&path, format!("v{op}").as_bytes(), -1)
                    .unwrap();
                let log = Arc::clone(&completions);
                handle.on_complete(move |_| log.lock().unwrap().push((s, op)));
                handles.push(handle);
            }
            // Every write must succeed, and per-session txids must
            // strictly increase in submission order (Z2).
            let mut last_txid = 0u64;
            for handle in &handles {
                let stat = handle.wait_timeout(Duration::from_secs(20)).unwrap();
                prop_assert!(
                    stat.modified_txid > last_txid,
                    "session {s}: txid regressed ({} after {last_txid})",
                    stat.modified_txid
                );
                last_txid = stat.modified_txid;
            }
            clients.push(client);
        }
        // Z1 observable: per session, the completion log is exactly the
        // submission order.
        let log = completions.lock().unwrap().clone();
        for (s, plan) in plans.iter().enumerate() {
            let seen: Vec<usize> = log
                .iter()
                .filter(|(session, _)| *session == s)
                .map(|(_, op)| *op)
                .collect();
            prop_assert_eq!(
                &seen,
                &(0..plan.writes).collect::<Vec<_>>(),
                "session {} completed out of submission order (groups={}, shards={})",
                s, groups, shards
            );
        }
        for client in clients {
            let _ = client.close();
        }
        deployment.shutdown();
    }
}

/// The pending-op table's re-order buffer, exercised deterministically:
/// results injected out of submission order must complete in submission
/// order, and the reorder counter must record the early arrival.
#[test]
fn out_of_order_results_complete_in_submission_order() {
    // Direct deployment: no triggers run, so the submitted writes stay
    // unprocessed and the test fully controls result delivery.
    let deployment = Deployment::direct(DeploymentConfig::aws());
    let client = deployment.connect("reorder").unwrap();
    let ctx = fk_cloud::trace::Ctx::disabled();

    let order: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let h1 = client.submit_set_data("/a", b"1", -1).unwrap();
    let h2 = client.submit_set_data("/b", b"2", -1).unwrap();
    assert_eq!(client.in_flight(), 2);
    for (rid, handle) in [(1u64, &h1), (2u64, &h2)] {
        let log = Arc::clone(&order);
        handle.on_complete(move |_| log.lock().unwrap().push(rid));
    }

    let result_for = |rid: u64, txid: u64| ClientNotification::WriteResult {
        request_id: rid,
        result: Ok(WriteResultData::single(format!("/n{rid}"), Stat::default())),
        txid,
    };
    // Request 2's result arrives first: it must be buffered, not
    // completed.
    deployment.bus().notify(&ctx, "reorder", result_for(2, 20));
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while client.reordered_results() == 0 {
        assert!(std::time::Instant::now() < deadline, "arrival not observed");
        std::thread::yield_now();
    }
    assert!(!h2.is_done(), "successor buffered behind its predecessor");
    assert!(order.lock().unwrap().is_empty());

    // Request 1's result releases both, in submission order.
    deployment.bus().notify(&ctx, "reorder", result_for(1, 10));
    assert!(h1.wait_timeout(Duration::from_secs(5)).is_ok());
    assert!(h2.wait_timeout(Duration::from_secs(5)).is_ok());
    assert_eq!(
        order.lock().unwrap().as_slice(),
        &[1, 2],
        "Z1 completion order"
    );
    assert_eq!(client.reordered_results(), 1);
    assert_eq!(client.in_flight(), 0);
    // MRD advanced to the highest observed txid either way.
    assert_eq!(client.mrd(), 20);
    deployment.shutdown();
}

/// Reads may overtake in-flight writes (Z3 permits it): a submitted read
/// completes while a write sits unprocessed in the pipeline.
#[test]
fn reads_overtake_stalled_writes() {
    let deployment = Deployment::direct(DeploymentConfig::aws());
    let client = deployment.connect("overtake").unwrap();
    // The root exists in storage; a write to it sits unprocessed (no
    // follower runs in a direct deployment).
    let write = client.submit_set_data("/never", b"stuck", -1).unwrap();
    let read = client.submit_get_children("/", false).unwrap();
    let children = read.wait_timeout(Duration::from_secs(5)).unwrap();
    assert!(children.is_empty(), "fresh root has no children");
    assert!(
        !write.is_done(),
        "write still in flight while read finished"
    );
    deployment.shutdown();
}
