//! Property-based validation of the subtree scan surface: for random
//! znode trees, random scan roots and every storage backend, the scan
//! result must be *exactly* the reference-model enumeration (the
//! [`fk_core::in_subtree`] membership predicate applied to the created
//! path set), and the scan's modeled price must honour the cost model's
//! contracts — the standard LIST+GET closed form, and the hybrid
//! aggregate-Query economy (a scan is never dearer than point-reading
//! every entry it returned).
//!
//! A second suite drives the same check end-to-end through a live
//! deployment at random pipeline geometry (shards × epoch batch ×
//! leader groups), where `get_subtree` may be served by the replica
//! tier or by storage — the enumeration must be identical either way.

use bytes::Bytes;
use fk_cloud::trace::Ctx;
use fk_cloud::{KvStore, MemStore, Meter, ObjectStore, Region};
use fk_core::deploy::{Deployment, DeploymentConfig};
use fk_core::user_store::{
    HybridUserStore, KvUserStore, MemUserStore, NodeRecord, ObjUserStore, UserStore,
};
use fk_core::{in_subtree, CreateMode, FkError};
use fk_cost::{CostModel, StorageMode};
use fk_testkit::geometry;
use proptest::prelude::*;
use std::sync::Arc;

fn backends() -> Vec<Box<dyn UserStore>> {
    let meter = Meter::new();
    let region = Region::US_EAST_1;
    vec![
        Box::new(ObjUserStore::new(ObjectStore::new(
            "u",
            region,
            meter.clone(),
        ))),
        Box::new(KvUserStore::new(KvStore::new("u", region, meter.clone()))),
        Box::new(HybridUserStore::new(
            KvStore::new("u", region, meter.clone()),
            ObjectStore::new("ub", region, meter.clone()),
            4096,
        )),
        Box::new(MemUserStore::new(MemStore::new(region, meter))),
    ]
}

/// Deterministic per-path payload size: mostly small, with every fifth
/// node pushed past the 4 kB hybrid offload threshold so scans cross
/// the inline/offloaded split in the same run.
fn size_for(index: usize, seed: u64) -> usize {
    if (index as u64 + seed).is_multiple_of(5) {
        4097 + (index % 3) * 1000
    } else {
        1 + (index * 37 + seed as usize) % 600
    }
}

fn record(path: &str, size: usize) -> NodeRecord {
    NodeRecord {
        path: path.to_owned(),
        data: Bytes::from(vec![0xA5u8; size]),
        created_txid: 1,
        modified_txid: 2,
        version: 0,
        children: Arc::new(Vec::new()),
        children_txid: 2,
        ephemeral_owner: None,
        epoch_marks: Arc::new(Vec::new()),
    }
}

/// The reference model: enumerate the subtree by filtering the created
/// path set with the membership predicate, sorted by path.
fn reference(paths: &[String], root: &str) -> Vec<String> {
    let mut expected: Vec<String> = paths
        .iter()
        .filter(|p| in_subtree(root, p))
        .cloned()
        .collect();
    expected.sort();
    expected
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Backend-level: `scan_subtree` ≡ reference enumeration on every
    /// backend, at every root (each created node, the tree root `/`,
    /// and a path that does not exist), with the scan priced through
    /// the cost model.
    #[test]
    fn scan_matches_reference_enumeration_on_all_backends(
        paths in geometry::tree_paths(),
        root_pick in 0usize..64,
        seed in geometry::schedule_seed(),
    ) {
        let ctx = Ctx::disabled();
        let model = CostModel::paper_default();
        let sizes: Vec<usize> = (0..paths.len()).map(|i| size_for(i, seed)).collect();
        for store in backends() {
            for (i, path) in paths.iter().enumerate() {
                store.write_node(&ctx, &record(path, sizes[i])).unwrap();
            }
            for root in [&paths[root_pick % paths.len()], &"/".to_owned(), &"/missing".to_owned()] {
                let entries = store.scan_subtree(&ctx, root).unwrap();
                let got: Vec<String> = entries.iter().map(|e| e.path.clone()).collect();
                let expected = reference(&paths, root);
                prop_assert_eq!(
                    &got, &expected,
                    "backend {:?}, root {}", store.kind(), root
                );
                // Every entry carries the payload and stat the write put
                // there — the raw-bytes summary decode loses nothing.
                for entry in &entries {
                    let i = paths.iter().position(|p| p == &entry.path).unwrap();
                    prop_assert_eq!(entry.data.len(), sizes[i]);
                    prop_assert_eq!(entry.stat.data_length as usize, sizes[i]);
                    prop_assert_eq!(entry.stat.modified_txid, 2);
                }

                // Cost-model contracts for this scan's entry sizes.
                let entry_sizes: Vec<usize> =
                    entries.iter().map(|e| e.data.len()).collect();
                let standard = model.cost_scan(StorageMode::Standard, &entry_sizes);
                prop_assert!(
                    (standard
                        - (model.pricing.s3_put
                            + entry_sizes.len() as f64 * model.pricing.s3_get))
                        .abs()
                        < 1e-15,
                    "standard scan is one LIST plus one GET per entry"
                );
                let hybrid = model.cost_scan(StorageMode::Hybrid, &entry_sizes);
                let point_reads: f64 = entry_sizes
                    .iter()
                    .map(|s| model.cost_read(StorageMode::Hybrid, *s))
                    .sum();
                prop_assert!(hybrid > 0.0, "even an empty Query bills a read unit");
                if !entry_sizes.is_empty() {
                    prop_assert!(
                        hybrid <= point_reads + 1e-15,
                        "aggregate Query ({hybrid}) must never exceed per-entry \
                         point reads ({point_reads})"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// End-to-end at random pipeline geometry: build a random tree
    /// through the write path, then `get_subtree` at every node — the
    /// result (whether served by the replica tier or by a storage scan)
    /// must equal the reference enumeration, and
    /// `get_children_with_data` must list exactly the direct children.
    #[test]
    fn subtree_reads_match_reference_at_random_geometry(
        paths in geometry::tree_paths(),
        config in geometry::distributor_config(),
        replicas in geometry::replica_config(),
        root_pick in 0usize..64,
    ) {
        let fk = Deployment::start(
            DeploymentConfig::aws()
                .with_distributor(config)
                .with_replicas(replicas),
        );
        let client = fk.connect("scan").unwrap();
        for (i, path) in paths.iter().enumerate() {
            client
                .create(path, &vec![b'd'; 1 + i % 40], CreateMode::Persistent)
                .unwrap();
        }

        let root = &paths[root_pick % paths.len()];
        let entries = client.get_subtree(root, false).unwrap();
        let got: Vec<String> = entries.iter().map(|e| e.path.clone()).collect();
        prop_assert_eq!(&got, &reference(&paths, root), "root {}", root);

        let children = client.get_children_with_data(root, false).unwrap();
        let mut expected_children: Vec<String> = paths
            .iter()
            .filter(|p| {
                p.len() > root.len()
                    && p.starts_with(root.as_str())
                    && p.as_bytes()[root.len()] == b'/'
                    && !p[root.len() + 1..].contains('/')
            })
            .cloned()
            .collect();
        expected_children.sort();
        let got_children: Vec<String> =
            children.iter().map(|e| e.path.clone()).collect();
        prop_assert_eq!(&got_children, &expected_children, "children of {}", root);

        // A root that was never created scans empty and lists NoNode.
        prop_assert!(client.get_subtree("/never-created", false).unwrap().is_empty());
        prop_assert!(matches!(
            client.get_children_with_data("/never-created", false),
            Err(FkError::NoNode)
        ));
        fk.shutdown();
    }
}
